// Fault injection & recovery tests: failure-plan text form, the
// kill-and-rebuild path through all four engines (bit-identical convergence
// vs the failure-free run), recovery cost accounting (metrics, kGuard /
// kRecovery spans, RecoverySpan agreement, trace tiling), the lazy-vertex
// queue snapshot, JSONL round-trip of recovery records, and the
// check_failure_scenario oracle entry point.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "lazygraph.hpp"
#include "testing/oracle.hpp"

namespace lazygraph {
namespace {

using engine::EngineKind;

// ------------------------------------------------------------ FailurePlan

TEST(FailurePlan, ParseRoundTripsCanonicalText) {
  for (const char* text : {"3@4:2", "0@1", "3@4:2,1@7", "12@8:3,0@1,2@2"}) {
    const auto plan = sim::FailurePlan::parse(text);
    EXPECT_EQ(plan.to_string(), text);
    EXPECT_TRUE(plan.enabled());
    EXPECT_EQ(sim::FailurePlan::parse(plan.to_string()), plan);
  }
}

TEST(FailurePlan, DefaultRestartOmittedFromText) {
  const auto plan = sim::FailurePlan::parse("5@3:1");
  EXPECT_EQ(plan.to_string(), "5@3");  // :1 is the default, kept implicit
}

TEST(FailurePlan, EmptyAndSentinelParseAsNoFailures) {
  EXPECT_FALSE(sim::FailurePlan::parse("").enabled());
  EXPECT_FALSE(sim::FailurePlan::parse("-").enabled());
  EXPECT_FALSE(sim::FailurePlan{}.enabled());
}

TEST(FailurePlan, MalformedTextThrows) {
  for (const char* bad : {"nonsense", "@3", "3@", "3@0", "3@2:0", "3@2x",
                          "x@2", "3@2:", "3@2,", ",3@2", "3 @2"}) {
    EXPECT_THROW(sim::FailurePlan::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(FailurePlan, DrawIsDeterministicAndInRange) {
  const auto a = sim::FailurePlan::draw(42, 8);
  const auto b = sim::FailurePlan::draw(42, 8);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.events.size(), 1u);
  EXPECT_LT(a.events[0].machine, 8u);
  EXPECT_GE(a.events[0].at_superstep, 1u);
  EXPECT_GE(a.events[0].restart_barriers, 1u);
}

// ------------------------------------------------------- engine recovery

struct Rig {
  Graph g;
  partition::DistributedGraph dg;

  explicit Rig(Graph graph, machine_t machines = 4)
      : g(std::move(graph)),
        dg(partition::DistributedGraph::build(
            g, machines,
            partition::assign_edges(
                g, machines, {partition::CutKind::kCoordinated, 7}))) {}
};

template <class P>
engine::RunResult<P> run_with_plan(const Rig& rig, EngineKind kind, P prog,
                                   const std::string& kill,
                                   sim::Tracer* tracer = nullptr) {
  sim::Cluster cluster({rig.dg.num_machines(), {}, 0,
                        sim::FailurePlan::parse(kill)});
  engine::RunConfig cfg;
  cfg.kind = kind;
  cfg.tracer = tracer;
  return engine::run(cfg, rig.dg, prog, cluster);
}

constexpr EngineKind kAllEngines[] = {EngineKind::kSync, EngineKind::kAsync,
                                      EngineKind::kLazyBlock,
                                      EngineKind::kLazyVertex};

// The tentpole invariant: same seed + a kill+recover converges to exactly
// the failure-free state, on every engine, with the recovery visible in the
// metrics and the simulated clock strictly advanced by the downtime.
TEST(Recovery, KillRecoverBitIdenticalToFailureFreeAllEngines) {
  const Rig rig(gen::erdos_renyi(200, 1000, 11, {1.0f, 5.0f}));
  for (const EngineKind kind : kAllEngines) {
    const auto base =
        run_with_plan(rig, kind, algos::SSSP{.source = 0}, "");
    const auto hurt =
        run_with_plan(rig, kind, algos::SSSP{.source = 0}, "1@2:2");
    ASSERT_TRUE(base.converged) << to_string(kind);
    ASSERT_TRUE(hurt.converged) << to_string(kind);
    EXPECT_EQ(hurt.supersteps, base.supersteps) << to_string(kind);
    EXPECT_EQ(hurt.metrics.recoveries, 1u) << to_string(kind);
    EXPECT_EQ(base.metrics.recoveries, 0u) << to_string(kind);
    EXPECT_GT(hurt.metrics.sim_seconds(), base.metrics.sim_seconds())
        << to_string(kind);
    ASSERT_EQ(hurt.data.size(), base.data.size());
    for (std::size_t v = 0; v < base.data.size(); ++v) {
      ASSERT_EQ(std::memcmp(&hurt.data[v], &base.data[v], sizeof(base.data[v])),
                0)
          << to_string(kind) << " vertex " << v;
    }
  }
}

// Multi-event plans: two machines die at different coherency points.
TEST(Recovery, MultipleKillsStillConvergeIdentically) {
  const Rig rig(gen::rmat(8, 6, 0.55, 0.2, 0.2, 3, {1.0f, 4.0f}));
  const auto base = run_with_plan(rig, EngineKind::kLazyBlock,
                                  algos::PageRankDelta{.tol = 1e-3}, "");
  const auto hurt = run_with_plan(rig, EngineKind::kLazyBlock,
                                  algos::PageRankDelta{.tol = 1e-3},
                                  "0@1,2@3:3");
  ASSERT_TRUE(base.converged);
  ASSERT_TRUE(hurt.converged);
  EXPECT_EQ(hurt.supersteps, base.supersteps);
  EXPECT_EQ(hurt.metrics.recoveries, 2u);
  for (std::size_t v = 0; v < base.data.size(); ++v) {
    ASSERT_EQ(hurt.data[v].rank, base.data[v].rank) << v;
  }
}

// A kill scheduled past convergence never fires; the run is untouched
// except for the guard traffic the armed Recoverer keeps.
TEST(Recovery, KillAfterConvergenceNeverFires) {
  const Rig rig(gen::erdos_renyi(100, 400, 5, {1.0f, 3.0f}));
  const auto base =
      run_with_plan(rig, EngineKind::kSync, algos::BFS{.source = 0}, "");
  const auto hurt = run_with_plan(rig, EngineKind::kSync,
                                  algos::BFS{.source = 0}, "1@100000");
  ASSERT_TRUE(hurt.converged);
  EXPECT_EQ(hurt.metrics.recoveries, 0u);
  EXPECT_EQ(hurt.supersteps, base.supersteps);
  for (std::size_t v = 0; v < base.data.size(); ++v) {
    ASSERT_EQ(hurt.data[v].depth, base.data[v].depth) << v;
  }
}

// An empty failure plan must be a true no-op: identical metrics to a plain
// run (no images, no guard charges, no spans).
TEST(Recovery, EmptyPlanChargesNothing) {
  const Rig rig(gen::erdos_renyi(150, 700, 9, {1.0f, 4.0f}));
  for (const EngineKind kind : kAllEngines) {
    const auto r = run_with_plan(rig, kind, algos::SSSP{.source = 0}, "");
    EXPECT_EQ(r.metrics.recoveries, 0u) << to_string(kind);
    EXPECT_EQ(r.metrics.guard_bytes, 0u) << to_string(kind);
    EXPECT_EQ(r.metrics.recovery_bytes, 0u) << to_string(kind);
  }
}

// Events aimed at machines the graph does not have are ignored (the
// shrinker may reduce `machines` under a fixed plan).
TEST(Recovery, OutOfRangeMachineIgnored) {
  const Rig rig(gen::erdos_renyi(100, 400, 5, {1.0f, 3.0f}), 2);
  const auto base = run_with_plan(rig, EngineKind::kSync,
                                  algos::SSSP{.source = 0}, "");
  const auto hurt = run_with_plan(rig, EngineKind::kSync,
                                  algos::SSSP{.source = 0}, "7@2");
  EXPECT_EQ(hurt.metrics.recoveries, 0u);
  EXPECT_EQ(hurt.supersteps, base.supersteps);
  EXPECT_EQ(hurt.metrics.sim_seconds(), base.metrics.sim_seconds());
}

// ------------------------------------------------------- cost accounting

TEST(Recovery, TraceSpansAndRecoverySpansAgreeExactly) {
  const Rig rig(gen::erdos_renyi(200, 1000, 11, {1.0f, 5.0f}));
  for (const EngineKind kind : kAllEngines) {
    sim::Tracer tracer;
    const auto r = run_with_plan(rig, kind, algos::SSSP{.source = 0},
                                 "1@2:2", &tracer);
    ASSERT_TRUE(r.converged) << to_string(kind);
    ASSERT_EQ(r.metrics.recoveries, 1u) << to_string(kind);

    // Exactly one kRecovery TraceSpan and one RecoverySpan, stamped from
    // the same seconds value.
    std::vector<sim::TraceSpan> recovery_spans;
    double total = 0.0;
    for (const sim::TraceSpan& s : tracer.spans()) {
      total += s.duration_seconds;
      if (s.kind == sim::SpanKind::kRecovery) recovery_spans.push_back(s);
    }
    ASSERT_EQ(recovery_spans.size(), 1u) << to_string(kind);
    ASSERT_EQ(tracer.recoveries().size(), 1u) << to_string(kind);
    const sim::RecoverySpan& rs = tracer.recoveries()[0];
    EXPECT_EQ(rs.seconds, recovery_spans[0].duration_seconds)
        << to_string(kind);  // exact, same stamped value
    EXPECT_EQ(rs.superstep, 2u) << to_string(kind);
    EXPECT_EQ(rs.machine, 1u) << to_string(kind);
    EXPECT_EQ(rs.down_barriers, 2u) << to_string(kind);
    EXPECT_GT(rs.rebuild_edges, 0u) << to_string(kind);
    EXPECT_GT(rs.mirror_bytes + rs.log_bytes, 0u) << to_string(kind);

    // The tiling invariant extends to guard + recovery spans.
    EXPECT_NEAR(total, r.metrics.sim_seconds(), 1e-9) << to_string(kind);
    double cursor = 0.0;
    for (const sim::TraceSpan& s : tracer.spans()) {
      ASSERT_NEAR(s.start_seconds, cursor, 1e-9) << to_string(kind);
      cursor += s.duration_seconds;
    }
  }
}

// Boundary vertices of a well-connected cut are bit-equal on survivors at a
// coherency point — mirror_exact must see them.
TEST(Recovery, MirrorExactCountsCoherentSurvivors) {
  const Rig rig(gen::erdos_renyi(300, 2400, 13, {1.0f, 4.0f}));
  ASSERT_GT(rig.dg.replication_factor(), 1.05);  // real boundary set
  sim::Tracer tracer;
  const auto r = run_with_plan(rig, EngineKind::kSync,
                               algos::SSSP{.source = 0}, "2@2", &tracer);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(tracer.recoveries().size(), 1u);
  const sim::RecoverySpan& rs = tracer.recoveries()[0];
  EXPECT_GT(rs.mirror_bytes, 0u);
  // The sync engine's eager broadcast makes every boundary replica
  // identical at the cut, so every shipped mirror is bit-exact.
  EXPECT_EQ(rs.mirror_exact * engine::wire_bytes<algos::SSSP::VData>(),
            rs.mirror_bytes);
}

TEST(Recovery, DownBarriersChargeStallNotSyncs) {
  const Rig rig(gen::erdos_renyi(200, 1000, 11, {1.0f, 5.0f}));
  const auto quick =
      run_with_plan(rig, EngineKind::kSync, algos::SSSP{.source = 0}, "1@2:1");
  const auto slow =
      run_with_plan(rig, EngineKind::kSync, algos::SSSP{.source = 0}, "1@2:3");
  ASSERT_EQ(quick.metrics.recoveries, 1u);
  ASSERT_EQ(slow.metrics.recoveries, 1u);
  // More downtime barriers cost strictly more simulated time but do not
  // count as global synchronizations (the cluster stalls; nothing syncs).
  EXPECT_GT(slow.metrics.sim_seconds(), quick.metrics.sim_seconds());
  EXPECT_EQ(slow.metrics.global_syncs, quick.metrics.global_syncs);
  // And the trajectory is failure-plan-deterministic in the data.
  for (std::size_t v = 0; v < quick.data.size(); ++v) {
    ASSERT_EQ(quick.data[v].dist, slow.data[v].dist) << v;
  }
}

// ----------------------------------------------------------- trace JSONL

TEST(Recovery, JsonlRoundTripsRecoveryRecords) {
  const Rig rig(gen::erdos_renyi(200, 1000, 11, {1.0f, 5.0f}));
  sim::Tracer tracer;
  const auto r = run_with_plan(rig, EngineKind::kLazyBlock,
                               algos::SSSP{.source = 0}, "1@2:2,0@3", &tracer);
  ASSERT_TRUE(r.converged);
  ASSERT_GE(tracer.recoveries().size(), 1u);

  std::ostringstream os;
  tracer.write_jsonl(os);
  std::istringstream is(os.str());
  const sim::Tracer back = sim::Tracer::read_jsonl(is);
  ASSERT_EQ(back.recoveries().size(), tracer.recoveries().size());
  for (std::size_t i = 0; i < tracer.recoveries().size(); ++i) {
    EXPECT_EQ(back.recoveries()[i], tracer.recoveries()[i]) << i;
  }
  ASSERT_EQ(back.spans().size(), tracer.spans().size());
  EXPECT_EQ(back.spans(), tracer.spans());
}

// ---------------------------------------------------------------- oracle

TEST(RecoveryOracle, CheckFailureScenarioPassesHandcrafted) {
  testing::Scenario s;
  s.seed = 77;
  s.num_vertices = 120;
  {
    const Graph g = gen::erdos_renyi(120, 600, 21, {1.0f, 4.0f});
    s.edges = g.edges();
  }
  s.machines = 4;
  s.program = testing::ProgramKind::kSssp;
  s.source = 0;
  s.kill = "1@2:2";
  const auto v = testing::check_failure_scenario(s, {});
  EXPECT_TRUE(v.ok) << v.failure;
}

TEST(RecoveryOracle, CheckFailureScenarioDerivesKillWhenEmpty) {
  testing::Scenario s;
  s.seed = 78;
  s.num_vertices = 80;
  {
    const Graph g = gen::erdos_renyi(80, 400, 22, {1.0f, 4.0f});
    s.edges = g.edges();
  }
  s.machines = 3;
  s.program = testing::ProgramKind::kBfs;
  s.source = 0;
  ASSERT_FALSE(s.has_failures());
  const auto v = testing::check_failure_scenario(s, {});
  EXPECT_TRUE(v.ok) << v.failure;
}

TEST(RecoveryOracle, GeneratedKillScenariosPassCheckScenario) {
  // The fuzz path: generator-drawn scenarios carrying a kill run through
  // the standard oracle, which exercises the failure branch.
  int checked = 0;
  for (std::uint64_t i = 0; i < 120 && checked < 3; ++i) {
    const testing::Scenario s = testing::make_scenario(20260808, i);
    if (!s.has_failures()) continue;
    ++checked;
    const auto v = testing::check_scenario(s, {});
    EXPECT_TRUE(v.ok) << "scenario " << i << ": " << v.failure
                      << "\n" << s.summary();
  }
  EXPECT_GE(checked, 1);
}

}  // namespace
}  // namespace lazygraph
