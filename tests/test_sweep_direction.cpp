// Direction-optimizing sweep tests: the pull direction over the CSC in-edge
// mirror and the adaptive push/pull switch must be invisible in results —
// bit-identical state, identical supersteps, identical simulated time and
// traffic — for every engine, thread budget, and partition cut. Plus the
// structural contracts behind that guarantee: the CSC mirror's per-target
// fold order equals the push merge order, and the edge-balanced chunk
// decomposition is purely degree-derived.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "lazygraph.hpp"

namespace lazygraph {
namespace {

using engine::PartState;
using engine::SweepCounters;
using engine::SweepDirection;
using engine::SweepExec;
using engine::SweepMode;

partition::DistributedGraph make_dg(const Graph& g, machine_t machines,
                                    bool split) {
  const auto assignment = partition::assign_edges(
      g, machines, {partition::CutKind::kCoordinated, 7});
  std::vector<std::uint64_t> split_edges;
  if (split) split_edges = partition::select_split_edges(g, machines, {});
  return partition::DistributedGraph::build(g, machines, assignment,
                                            split_edges);
}

// --------------------------------------------- engine-level bit-identity

/// Runs `prog` on `kind` under all three directions and requires the pull
/// and adaptive runs to be indistinguishable from push: same convergence,
/// same superstep count, same simulated seconds, same traffic, and
/// bit-identical per-vertex state (via the program-specific `eq`).
template <class P, class Eq>
void expect_direction_invariant(const partition::DistributedGraph& dg,
                                machine_t machines, const P& prog,
                                engine::EngineKind kind, std::uint32_t tpm,
                                Eq&& eq, const std::string& tag) {
  std::vector<engine::RunResult<P>> rs;
  for (const SweepDirection dir :
       {SweepDirection::kPush, SweepDirection::kPull,
        SweepDirection::kAdaptive}) {
    sim::Cluster cluster({machines, {}, 4});
    engine::RunConfig cfg;
    cfg.kind = kind;
    cfg.threads_per_machine = tpm;
    cfg.sweep = dir;
    rs.push_back(engine::run(cfg, dg, prog, cluster));
    ASSERT_TRUE(rs.back().converged) << tag;
  }
  // Forced push never pulls; forced pull really exercises the CSC path on
  // the chunk-parallel engines (the serial Gauss-Seidel engines are push by
  // definition, so the knob is inert there).
  EXPECT_EQ(rs[0].metrics.sweep_pull_rounds, 0u) << tag;
  if (kind == engine::EngineKind::kSync ||
      kind == engine::EngineKind::kLazyBlock) {
    EXPECT_GT(rs[1].metrics.sweep_pull_rounds, 0u) << tag;
  } else {
    EXPECT_EQ(rs[1].metrics.sweep_pull_rounds, 0u) << tag;
  }
  for (std::size_t i = 1; i < rs.size(); ++i) {
    ASSERT_EQ(rs[i].supersteps, rs[0].supersteps) << tag << " dir " << i;
    ASSERT_EQ(rs[i].metrics.sim_seconds(), rs[0].metrics.sim_seconds())
        << tag << " dir " << i;
    ASSERT_EQ(rs[i].metrics.network_bytes, rs[0].metrics.network_bytes)
        << tag << " dir " << i;
    ASSERT_EQ(rs[i].data.size(), rs[0].data.size()) << tag;
    for (std::size_t v = 0; v < rs[0].data.size(); ++v) {
      ASSERT_TRUE(eq(rs[i].data[v], rs[0].data[v]))
          << tag << " dir " << i << " vertex " << v;
    }
  }
}

void run_direction_matrix(engine::EngineKind kind, bool split) {
  const machine_t machines = 4;
  // Directed cell for SSSP / PageRank; symmetrized cell for the undirected
  // programs (k-core and components are undirected notions).
  const Graph gd = gen::erdos_renyi(220, 1100, 19, {1.0f, 5.0f});
  const Graph gu = gen::erdos_renyi(200, 700, 23).symmetrized();
  const auto dgd = make_dg(gd, machines, split);
  const auto dgu = make_dg(gu, machines, split);
  const std::string base = std::string(engine::to_string(kind)) +
                           (split ? "/split" : "/unsplit") + "/tpm=";
  for (const std::uint32_t tpm : {1u, 2u, 7u}) {
    const std::string tag = base + std::to_string(tpm);
    expect_direction_invariant(
        dgd, machines, algos::SSSP{.source = 0}, kind, tpm,
        [](const algos::SSSP::VData& a, const algos::SSSP::VData& b) {
          return a.dist == b.dist;
        },
        tag + "/sssp");
    expect_direction_invariant(
        dgd, machines, algos::PageRankDelta{}, kind, tpm,
        [](const algos::PageRankDelta::VData& a,
           const algos::PageRankDelta::VData& b) {
          return a.rank == b.rank && a.pending_delta == b.pending_delta;
        },
        tag + "/pagerank");
    expect_direction_invariant(
        dgu, machines, algos::KCore{.k = 3}, kind, tpm,
        [](const algos::KCore::VData& a, const algos::KCore::VData& b) {
          return a.core == b.core && a.deleted == b.deleted;
        },
        tag + "/kcore");
    expect_direction_invariant(
        dgu, machines, algos::ConnectedComponents{}, kind, tpm,
        [](const algos::ConnectedComponents::VData& a,
           const algos::ConnectedComponents::VData& b) {
          return a.label == b.label;
        },
        tag + "/cc");
  }
}

TEST(SweepDirectionMatrix, SyncUnsplit) {
  run_direction_matrix(engine::EngineKind::kSync, false);
}
TEST(SweepDirectionMatrix, SyncSplit) {
  run_direction_matrix(engine::EngineKind::kSync, true);
}
TEST(SweepDirectionMatrix, LazyBlockUnsplit) {
  run_direction_matrix(engine::EngineKind::kLazyBlock, false);
}
TEST(SweepDirectionMatrix, LazyBlockSplit) {
  run_direction_matrix(engine::EngineKind::kLazyBlock, true);
}
TEST(SweepDirectionMatrix, AsyncUnsplitKnobInert) {
  run_direction_matrix(engine::EngineKind::kAsync, false);
}
TEST(SweepDirectionMatrix, LazyVertexUnsplitKnobInert) {
  run_direction_matrix(engine::EngineKind::kLazyVertex, false);
}

// ------------------------------------------------------- CSC mirror order

/// The structural contract of DESIGN §5k: each target's in-edge run must
/// list exactly the CSR edges aimed at it, in (source lvid asc, original
/// edge index asc) order — the order the push merge folds that target.
void expect_csc_matches_push_fold_order(const partition::Part& part) {
  const lvid_t n = part.num_local();
  ASSERT_EQ(part.in_offsets.size(), static_cast<std::size_t>(n) + 1);
  ASSERT_EQ(part.in_offsets[0], 0u);
  ASSERT_EQ(part.in_offsets[n], part.num_local_edges());
  ASSERT_EQ(part.in_sources.size(), part.num_local_edges());
  ASSERT_EQ(part.in_weights.size(), part.num_local_edges());
  ASSERT_EQ(part.in_parallel_mode.size(), part.num_local_edges());

  std::vector<std::vector<std::tuple<lvid_t, float, std::uint8_t>>> want(n);
  for (lvid_t v = 0; v < n; ++v) {
    for (std::uint64_t e = part.offsets[v]; e < part.offsets[v + 1]; ++e) {
      want[part.targets[e]].push_back(
          {v, part.weights[e], part.parallel_mode[e]});
    }
  }
  for (lvid_t t = 0; t < n; ++t) {
    const std::uint64_t begin = part.in_offsets[t];
    const std::uint64_t end = part.in_offsets[t + 1];
    ASSERT_LE(begin, end) << "target " << t;
    ASSERT_EQ(end - begin, want[t].size()) << "target " << t;
    ASSERT_EQ(end - begin, part.local_in_degree[t]) << "target " << t;
    for (std::uint64_t i = 0; i < end - begin; ++i) {
      EXPECT_EQ(part.in_sources[begin + i], std::get<0>(want[t][i]))
          << "target " << t << " slot " << i;
      EXPECT_EQ(part.in_weights[begin + i], std::get<1>(want[t][i]))
          << "target " << t << " slot " << i;
      EXPECT_EQ(part.in_parallel_mode[begin + i], std::get<2>(want[t][i]))
          << "target " << t << " slot " << i;
    }
  }
}

TEST(CscMirror, ParallelEdgesSelfLoopsAndEmptyTargets) {
  // Duplicate parallel edges 0->1 and 0->2 (distinct weights), a self-loop
  // 1->1, vertex 3 with out-edges only (empty in-edge run), vertex 6 fully
  // isolated. Graph keeps duplicates (simplification is a separate op).
  std::vector<Edge> edges = {
      {0, 1, 1.0f}, {0, 1, 2.0f}, {2, 1, 3.0f}, {1, 1, 4.0f},
      {3, 2, 1.5f}, {0, 2, 2.5f}, {0, 2, 2.75f}, {4, 0, 1.0f},
      {2, 4, 1.0f}, {5, 2, 0.5f}, {4, 5, 1.25f},
  };
  const Graph g(7, std::move(edges));
  for (const machine_t machines : {machine_t{1}, machine_t{3}}) {
    for (const bool split : {false, true}) {
      const auto dg = make_dg(g, machines, split);
      for (machine_t m = 0; m < machines; ++m) {
        SCOPED_TRACE("machines=" + std::to_string(machines) +
                     " split=" + std::to_string(split) +
                     " m=" + std::to_string(m));
        expect_csc_matches_push_fold_order(dg.part(m));
      }
    }
  }
}

TEST(CscMirror, RandomGraphEveryMachineEveryCut) {
  const Graph g = gen::erdos_renyi(300, 1800, 31, {1.0f, 4.0f});
  for (const bool split : {false, true}) {
    const auto dg = make_dg(g, 4, split);
    for (machine_t m = 0; m < 4; ++m) {
      SCOPED_TRACE("split=" + std::to_string(split) +
                   " m=" + std::to_string(m));
      expect_csc_matches_push_fold_order(dg.part(m));
    }
  }
}

// --------------------------------------------------- edge-balanced chunks

TEST(EdgeBalancedChunks, BoundsAreDegreeDerivedAndCoverEveryItem) {
  const Graph g = gen::erdos_renyi(500, 6000, 11, {1.0f, 4.0f});
  const auto dg = make_dg(g, 1, false);
  const partition::Part& part = dg.part(0);
  const std::size_t n = part.num_local();
  const auto weight = [&](std::size_t v) {
    return 1 + (part.offsets[v + 1] - part.offsets[v]);
  };

  std::vector<std::size_t> bounds;
  std::vector<std::uint64_t> weights;
  engine::build_weighted_chunks(n, weight, bounds, &weights);

  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), n);
  EXPECT_EQ(weights.size(), bounds.size() - 1);
  for (std::size_t c = 0; c + 1 < bounds.size(); ++c) {
    ASSERT_LT(bounds[c], bounds[c + 1]) << "chunk " << c;
    std::uint64_t sum = 0;
    for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) sum += weight(i);
    EXPECT_EQ(weights[c], sum) << "chunk " << c;
    if (c + 2 < bounds.size()) {
      // Every chunk but the last closes at the fixed cumulative budget.
      EXPECT_GE(weights[c], engine::kSweepEdgeBudget) << "chunk " << c;
    }
  }
  // The decomposition takes no thread count at all — invariance across
  // thread budgets is structural. Repeated evaluation is bit-stable.
  std::vector<std::size_t> bounds2;
  engine::build_weighted_chunks(n, weight, bounds2, nullptr);
  EXPECT_EQ(bounds2, bounds);
}

TEST(EdgeBalancedChunks, ZeroDegreeRunsStillAdvanceTheBudget) {
  // 10k isolated items at weight 1 each must still close chunks (no
  // unbounded chunk on zero-degree tails).
  std::vector<std::size_t> bounds;
  engine::build_weighted_chunks(
      10000, [](std::size_t) { return std::uint64_t{1}; }, bounds, nullptr);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 10000u);
  EXPECT_GT(bounds.size(), 2u);
  for (std::size_t c = 0; c + 2 < bounds.size(); ++c) {
    EXPECT_EQ(bounds[c + 1] - bounds[c],
              static_cast<std::size_t>(engine::kSweepEdgeBudget))
        << c;
  }
}

// ------------------------------------------- local sweep: counter parity

/// Single-machine fixture (the whole graph on one part).
template <class P>
struct LocalRig {
  Graph g;
  partition::DistributedGraph dg;
  P prog;
  std::vector<PartState<P>> states;

  explicit LocalRig(Graph graph, P p = {})
      : g(std::move(graph)),
        dg(partition::DistributedGraph::build(
            g, 1,
            partition::assign_edges(
                g, 1, {partition::CutKind::kCoordinated, 1}))),
        prog(p),
        states(engine::make_states(dg, prog)) {}

  const partition::Part& part() const { return dg.part(0); }
  PartState<P>& state() { return states[0]; }
};

TEST(SweepDirectionLocal, ForcedPullBitIdenticalWithCounterParity) {
  LocalRig<algos::SSSP> rig(gen::erdos_renyi(400, 2400, 7, {1.0f, 4.0f}));
  const lvid_t n = rig.part().num_local();
  for (lvid_t v = 0; v < n; ++v) {
    engine::deposit_msg(rig.prog, rig.state(), v, 1.0 + 0.25 * v);
  }
  PartState<algos::SSSP> pull_state = rig.state();

  sim::Cluster cluster({1, {}, 4});
  const SweepExec exec{&cluster, 4};
  const SweepCounters cpush =
      engine::local_sweep(rig.prog, rig.part(), rig.state(),
                          SweepMode::kSnapshot, exec, SweepDirection::kPush);
  const SweepCounters cpull =
      engine::local_sweep(rig.prog, rig.part(), pull_state,
                          SweepMode::kSnapshot, exec, SweepDirection::kPull);

  // The deterministic counters are direction-invariant...
  EXPECT_EQ(cpull.work, cpush.work);
  EXPECT_EQ(cpull.applies, cpush.applies);
  EXPECT_EQ(cpull.scanned, cpush.scanned);
  // ...while the direction-specific ones expose which path ran.
  EXPECT_EQ(cpush.pull_rounds, 0u);
  EXPECT_EQ(cpull.pull_rounds, 1u);
  EXPECT_GT(cpush.staged, 0u);
  EXPECT_EQ(cpull.staged, 0u);
  EXPECT_EQ(cpush.pushed, cpush.work - cpush.applies);
  EXPECT_GE(cpull.pulled, cpull.work - cpull.applies);
  EXPECT_GT(cpull.staging_avoided_bytes, 0u);

  for (lvid_t v = 0; v < n; ++v) {
    ASSERT_EQ(pull_state.vdata[v].dist, rig.state().vdata[v].dist) << v;
  }
  ASSERT_EQ(pull_state.has_msg, rig.state().has_msg);
  ASSERT_EQ(pull_state.has_delta, rig.state().has_delta);
  for (lvid_t v = 0; v < n; ++v) {
    if (rig.state().has_msg[v]) {
      EXPECT_EQ(pull_state.msg[v], rig.state().msg[v]) << "msg " << v;
    }
    if (rig.state().has_delta[v]) {
      EXPECT_EQ(pull_state.delta[v], rig.state().delta[v]) << "delta " << v;
    }
  }
}

TEST(SweepDirectionLocal, AdaptivePicksPullWhenDensePushWhenSparse) {
  sim::Cluster cluster({1, {}, 4});
  const SweepExec exec{&cluster, 4};
  {
    LocalRig<algos::SSSP> rig(gen::erdos_renyi(400, 2400, 9, {1.0f, 4.0f}));
    const lvid_t n = rig.part().num_local();
    for (lvid_t v = 0; v < n; ++v) {
      engine::deposit_msg(rig.prog, rig.state(), v, 1.0 + 0.5 * v);
    }
    // Full frontier: 2 * frontier_out_edges = 2E >= E, so adaptive pulls.
    const SweepCounters c = engine::local_sweep(
        rig.prog, rig.part(), rig.state(), SweepMode::kSnapshot, exec,
        SweepDirection::kAdaptive);
    EXPECT_EQ(c.pull_rounds, 1u);
    EXPECT_EQ(c.staged, 0u);
  }
  {
    LocalRig<algos::SSSP> rig(gen::erdos_renyi(400, 2400, 9, {1.0f, 4.0f}));
    // One seed vertex: its out-degree is a sliver of E, so adaptive pushes.
    engine::deposit_msg(rig.prog, rig.state(), 0, 0.0);
    const SweepCounters c = engine::local_sweep(
        rig.prog, rig.part(), rig.state(), SweepMode::kSnapshot, exec,
        SweepDirection::kAdaptive);
    EXPECT_EQ(c.pull_rounds, 0u);
  }
}

}  // namespace
}  // namespace lazygraph
