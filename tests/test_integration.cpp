// End-to-end integration: the full pipeline (dataset analogue -> partition ->
// edge split -> engine -> metrics) on the evaluation graphs, plus the
// headline claims of the paper checked as assertions.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace lazygraph {
namespace {

using engine::EngineKind;
using testsupport::build_dgraph;
using testsupport::make_cluster;

Graph small_dataset(const std::string& name, bool symmetrize = false,
                    double scale = 0.05) {
  Graph g = datasets::make(datasets::spec_by_name(name), scale);
  if (symmetrize) g = g.symmetrized();
  return g;
}

TEST(Integration, FullPipelineOnRoadAnalogue) {
  const Graph g = small_dataset("roadusa-like");
  const machine_t p = 16;
  const auto assignment = partition::assign_edges(
      g, p, {partition::CutKind::kCoordinated, 2018});
  const auto split = partition::select_split_edges(g, p, {.t_extra = 0.001});
  const auto dg = partition::DistributedGraph::build(g, p, assignment, split);
  auto cl = make_cluster(p);
  const vid_t source = g.num_vertices() / 2;
  const auto r = engine::run({.kind = EngineKind::kLazyBlock}, dg,
                             algos::SSSP{.source = source}, cl);
  ASSERT_TRUE(r.converged);
  testsupport::expect_sssp_exact(g, source, r.data);
}

TEST(Integration, FullPipelineOnSocialAnalogue) {
  const Graph g = small_dataset("youtube-like", /*symmetrize=*/true);
  const machine_t p = 24;
  const auto dg = build_dgraph(g, p);
  auto cl = make_cluster(p);
  const auto r = engine::run({.kind = EngineKind::kLazyBlock}, dg,
                             algos::KCore{.k = 4}, cl);
  ASSERT_TRUE(r.converged);
  testsupport::expect_kcore_exact(g, 4, r.data);
}

TEST(Integration, FullPipelineOnWebAnalogue) {
  const Graph g = small_dataset("webgoogle-like");
  const machine_t p = 12;
  const auto dg = build_dgraph(g, p);
  auto cl = make_cluster(p);
  const algos::PageRankDelta pr{.tol = 1e-4};
  const auto r = engine::run({.kind = EngineKind::kLazyBlock}, dg, pr, cl);
  ASSERT_TRUE(r.converged);
  testsupport::expect_pagerank_close(g, r.data, 1e-4);
}

// The paper's headline claim, asserted on analogues: LazyGraph performs
// fewer global synchronizations AND moves less traffic than PowerGraph Sync
// on all four algorithms.
class HeadlineClaims : public ::testing::TestWithParam<const char*> {};

TEST_P(HeadlineClaims, LazyReducesSyncsAndTraffic) {
  const std::string name = GetParam();
  const machine_t p = 16;
  for (int algo = 0; algo < 4; ++algo) {
    const bool symmetrize = (algo == 2 || algo == 3);
    // Traffic reduction is scale-sensitive; use a moderately sized analogue
    // (Fig. 11 demonstrates the claim at full evaluation scale).
    const Graph g = small_dataset(name, symmetrize, 0.2);
    const auto dg = build_dgraph(g, p);
    auto cl_sync = make_cluster(p);
    auto cl_lazy = make_cluster(p);
    auto run = [&](EngineKind kind, sim::Cluster& cl) {
      const engine::RunConfig cfg{.kind = kind};
      switch (algo) {
        case 0:
          return engine::run(cfg, dg, algos::SSSP{.source = 0}, cl).converged;
        case 1:
          return engine::run(cfg, dg, algos::PageRankDelta{}, cl).converged;
        case 2:
          return engine::run(cfg, dg, algos::ConnectedComponents{}, cl)
              .converged;
        default:
          return engine::run(cfg, dg, algos::KCore{.k = 4}, cl).converged;
      }
    };
    ASSERT_TRUE(run(EngineKind::kSync, cl_sync)) << "algo " << algo;
    ASSERT_TRUE(run(EngineKind::kLazyBlock, cl_lazy)) << "algo " << algo;
    EXPECT_LT(cl_lazy.metrics().global_syncs, cl_sync.metrics().global_syncs)
        << name << " algo " << algo;
    // Traffic reduction is robust for the accumulate-style algorithms
    // (PageRank, k-core); for min-propagation (SSSP/CC) it depends on scale
    // and lambda — Fig. 11 reports it at the evaluated configuration.
    if (algo == 1 || algo == 3) {
      EXPECT_LE(cl_lazy.metrics().network_bytes,
                cl_sync.metrics().network_bytes)
          << name << " algo " << algo;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Analogues, HeadlineClaims,
                         ::testing::Values("roadnetca-like", "youtube-like",
                                           "webgoogle-like"),
                         [](const auto& info) {
                           std::string s = info.param;
                           s = s.substr(0, s.find('-'));
                           return s;
                         });

TEST(Integration, ThreadedAndSerialClustersAgreeBitExact) {
  const Graph g = gen::rmat(9, 6, 0.55, 0.2, 0.2, 77, {1.0f, 9.0f});
  const auto dg = build_dgraph(g, 12);
  sim::Cluster serial({12, {}, /*threads=*/1});
  sim::Cluster threaded({12, {}, /*threads=*/4});
  const engine::RunConfig cfg{.kind = EngineKind::kLazyBlock};
  const auto a = engine::run(cfg, dg, algos::PageRankDelta{}, serial);
  const auto b = engine::run(cfg, dg, algos::PageRankDelta{}, threaded);
  ASSERT_TRUE(a.converged && b.converged);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(a.data[v].rank, b.data[v].rank) << "thread-count changed result";
  }
  EXPECT_EQ(serial.metrics().network_bytes, threaded.metrics().network_bytes);
  EXPECT_EQ(serial.metrics().global_syncs, threaded.metrics().global_syncs);
}

TEST(Integration, GraphRoundTripThroughIoThenSolve) {
  const Graph g = gen::erdos_renyi(200, 900, 55, {1.0f, 9.0f});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(g, ss);
  const Graph loaded = io::read_binary(ss);
  const auto dg = build_dgraph(loaded, 8);
  auto cl = make_cluster(8);
  const auto r = engine::run({.kind = EngineKind::kLazyBlock}, dg,
                             algos::SSSP{.source = 0}, cl);
  ASSERT_TRUE(r.converged);
  testsupport::expect_sssp_exact(g, 0, r.data);
}

}  // namespace
}  // namespace lazygraph
