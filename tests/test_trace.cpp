// Tracer subsystem: timeline invariants, determinism across cluster thread
// counts, JSONL round-trip, and the golden accounting identity — every
// simulated second the metrics report is covered by exactly one span.
#include <gtest/gtest.h>

#include <sstream>

#include "test_support.hpp"

namespace lazygraph {
namespace {

using engine::EngineKind;
using sim::SpanKind;
using sim::Tracer;
using sim::TraceSpan;
using testsupport::build_dgraph;
using testsupport::make_cluster;

const std::vector<EngineKind> kEngines = {
    EngineKind::kSync, EngineKind::kAsync, EngineKind::kLazyBlock,
    EngineKind::kLazyVertex};

struct Traced {
  Tracer tracer;
  engine::RunResult<algos::PageRankDelta> result;
  double sim_seconds = 0.0;
};

Traced traced_pagerank(EngineKind kind, unsigned threads = 1) {
  const Graph g = gen::rmat(8, 6, 0.57, 0.19, 0.19, 42, {1.0f, 5.0f});
  const auto dg = build_dgraph(g, 8);
  sim::Cluster cl(sim::ClusterConfig{8, {}, threads});
  Traced t;
  t.result = engine::run({.kind = kind, .tracer = &t.tracer}, dg,
                         algos::PageRankDelta{.tol = 1e-4}, cl);
  t.sim_seconds = cl.metrics().sim_seconds();
  EXPECT_EQ(cl.tracer(), nullptr) << "run() must restore the previous tracer";
  return t;
}

// Golden accounting identity: every engine's simulated seconds decompose
// exactly into its spans (each charge helper emits exactly one span).
TEST(Trace, SpanSecondsSumToSimSecondsOnAllEngines) {
  for (const EngineKind kind : kEngines) {
    const Traced t = traced_pagerank(kind);
    ASSERT_TRUE(t.result.converged) << to_string(kind);
    ASSERT_FALSE(t.tracer.spans().empty()) << to_string(kind);
    EXPECT_NEAR(t.tracer.total_span_seconds(), t.sim_seconds, 1e-9)
        << to_string(kind);
    EXPECT_NEAR(t.result.metrics.sim_seconds(), t.sim_seconds, 0.0)
        << to_string(kind);
    EXPECT_EQ(t.result.trace, &t.tracer) << to_string(kind);
    EXPECT_EQ(t.tracer.engine(), to_string(kind));
  }
}

// Timeline invariants: spans tile the run — each starts where the previous
// one ended, starting from zero, with non-negative durations and
// non-decreasing superstep tags.
TEST(Trace, SpansTileTheTimeline) {
  for (const EngineKind kind : kEngines) {
    const Traced t = traced_pagerank(kind);
    const auto& spans = t.tracer.spans();
    ASSERT_FALSE(spans.empty()) << to_string(kind);
    EXPECT_DOUBLE_EQ(spans.front().start_seconds, 0.0) << to_string(kind);
    for (std::size_t i = 0; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].duration_seconds, 0.0) << to_string(kind);
      if (i > 0) {
        EXPECT_DOUBLE_EQ(
            spans[i].start_seconds,
            spans[i - 1].start_seconds + spans[i - 1].duration_seconds)
            << to_string(kind) << " span " << i;
        EXPECT_GE(spans[i].superstep, spans[i - 1].superstep)
            << to_string(kind) << " span " << i;
      }
    }
  }
}

// The lazy-block timeline must expose the paper's protocol stages: local
// stages (Stage 1) and coherency exchanges (Stage 2) carrying the comm-mode
// decision with both predicted collective times under the adaptive policy.
TEST(Trace, LazyBlockSpansCarryProtocolStagesAndCommDecision) {
  const Traced t = traced_pagerank(EngineKind::kLazyBlock);
  std::size_t local_stages = 0, exchanges = 0, decided = 0, with_traffic = 0;
  for (const TraceSpan& s : t.tracer.spans()) {
    if (s.kind == SpanKind::kLocalStage) {
      ++local_stages;
      EXPECT_GT(s.machines, 0u);
      EXPECT_GE(s.max_work, s.min_work);
      EXPECT_GE(static_cast<double>(s.max_work), s.mean_work);
      EXPECT_GE(s.mean_work, static_cast<double>(s.min_work));
    }
    if (s.kind == SpanKind::kCoherencyExchange) {
      ++exchanges;
      // The final (quiescent) superstep's exchange may ship nothing.
      if (s.bytes > 0) {
        ++with_traffic;
        EXPECT_GT(s.messages, 0u);
      }
      if (s.comm_mode >= 0) ++decided;
      EXPECT_GE(s.prediction.t_a2a_seconds, 0.0);
      EXPECT_GE(s.prediction.t_m2m_seconds, 0.0);
    }
  }
  EXPECT_GE(local_stages, 1u);
  EXPECT_GE(exchanges, 1u);
  EXPECT_GE(with_traffic, 1u);
  EXPECT_EQ(decided, exchanges) << "every exchange records its chosen mode";
}

// Superstep snapshots log what the adaptive machinery decided and why.
TEST(Trace, LazyBlockSnapshotsRecordAdaptiveDecisions) {
  const Traced t = traced_pagerank(EngineKind::kLazyBlock);
  const auto& snaps = t.tracer.snapshots();
  ASSERT_FALSE(snaps.empty());
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(snaps[i].superstep, snaps[i - 1].superstep);
    }
    EXPECT_GE(snaps[i].measured_t_seconds, 0.0);
    EXPECT_GE(snaps[i].comm_mode, 0);
  }
  EXPECT_EQ(snaps.size(), t.result.supersteps);
}

// The trace is a pure function of the simulated run: the cluster's worker
// thread count must not leak into it.
TEST(Trace, DeterministicAcrossClusterThreadCounts) {
  const Traced serial = traced_pagerank(EngineKind::kLazyBlock, /*threads=*/1);
  const Traced threaded =
      traced_pagerank(EngineKind::kLazyBlock, /*threads=*/4);
  ASSERT_EQ(serial.tracer.spans().size(), threaded.tracer.spans().size());
  EXPECT_EQ(serial.tracer.spans(), threaded.tracer.spans());
  EXPECT_EQ(serial.tracer.snapshots(), threaded.tracer.snapshots());
}

// JSONL export parses back bit-exactly (doubles are emitted round-trippable).
TEST(Trace, JsonlRoundTripIsExact) {
  const Traced t = traced_pagerank(EngineKind::kLazyBlock);
  std::stringstream ss;
  t.tracer.write_jsonl(ss);
  const Tracer back = Tracer::read_jsonl(ss);
  EXPECT_EQ(back.engine(), t.tracer.engine());
  EXPECT_EQ(back.algo(), t.tracer.algo());
  ASSERT_EQ(back.spans().size(), t.tracer.spans().size());
  EXPECT_EQ(back.spans(), t.tracer.spans());
  ASSERT_EQ(back.snapshots().size(), t.tracer.snapshots().size());
  EXPECT_EQ(back.snapshots(), t.tracer.snapshots());
}

TEST(Trace, SpanKindNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(SpanKind::kPlanCarry); ++k) {
    const auto kind = static_cast<SpanKind>(k);
    EXPECT_EQ(sim::span_kind_from_string(sim::to_string(kind)), kind);
  }
  EXPECT_THROW(sim::span_kind_from_string("bogus"), std::invalid_argument);
}

TEST(Trace, SetupSpansLiveOnTheirOwnTimeline) {
  Traced t = traced_pagerank(EngineKind::kLazyBlock);
  const double sim_total = t.tracer.total_span_seconds();
  t.tracer.record_setup({.kind = SpanKind::kIngest,
                         .duration_seconds = 0.25,
                         .items = 1000});
  t.tracer.record_setup({.kind = SpanKind::kPartition,
                         .duration_seconds = 0.5,
                         .items = 1000,
                         .cache_hit = true});
  // Starts chain along the setup (wall-clock) timeline...
  ASSERT_EQ(t.tracer.setup_spans().size(), 2u);
  EXPECT_DOUBLE_EQ(t.tracer.setup_spans()[0].start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(t.tracer.setup_spans()[1].start_seconds, 0.25);
  EXPECT_DOUBLE_EQ(t.tracer.total_setup_seconds(), 0.75);
  // ...and never leak into the simulated-time accounting the oracle checks.
  EXPECT_DOUBLE_EQ(t.tracer.total_span_seconds(), sim_total);

  // JSONL round-trips setup records exactly, alongside the engine spans.
  std::stringstream ss;
  t.tracer.write_jsonl(ss);
  const Tracer back = Tracer::read_jsonl(ss);
  EXPECT_EQ(back.setup_spans(), t.tracer.setup_spans());
  EXPECT_EQ(back.spans(), t.tracer.spans());

  std::stringstream table;
  t.tracer.setup_table().print(table);
  EXPECT_NE(table.str().find("ingest"), std::string::npos);
  EXPECT_NE(table.str().find("hit"), std::string::npos);

  t.tracer.clear();
  EXPECT_TRUE(t.tracer.setup_spans().empty());
}

TEST(Trace, ClearEmptiesTheTimeline) {
  Traced t = traced_pagerank(EngineKind::kSync);
  ASSERT_FALSE(t.tracer.spans().empty());
  t.tracer.clear();
  EXPECT_TRUE(t.tracer.spans().empty());
  EXPECT_TRUE(t.tracer.snapshots().empty());
  EXPECT_DOUBLE_EQ(t.tracer.total_span_seconds(), 0.0);
}

// Tables are smoke-checked only: headers present, one row per item.
TEST(Trace, TablesRenderWithoutTruncation) {
  const Traced t = traced_pagerank(EngineKind::kLazyBlock);
  std::stringstream ss;
  t.tracer.spans_table().print(ss);
  t.tracer.top_spans_table(5).print(ss);
  t.tracer.kind_summary_table().print(ss);
  t.tracer.supersteps_table().print(ss);
  EXPECT_NE(ss.str().find("kind"), std::string::npos);
  EXPECT_NE(ss.str().find("coherency_exchange"), std::string::npos);
}

// Charging with no tracer attached must stay on the fast path (and the old
// untyped charge helpers keep working for direct Cluster users).
TEST(Trace, ClusterWithoutTracerRecordsNothing) {
  auto cl = make_cluster(4);
  ASSERT_EQ(cl.tracer(), nullptr);
  const std::vector<std::uint64_t> work = {5, 7, 3, 9};
  cl.charge_compute(work);
  cl.charge_barrier();
  cl.charge_exchange(sim::CommMode::kAllToAll, 1024, 12);
  Tracer tracer;
  cl.set_tracer(&tracer);
  cl.charge_compute(work);
  cl.set_tracer(nullptr);
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].kind, SpanKind::kCompute);
  EXPECT_EQ(tracer.spans()[0].min_work, 3u);
  EXPECT_EQ(tracer.spans()[0].max_work, 9u);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].mean_work, 6.0);
  EXPECT_GT(tracer.spans()[0].start_seconds, 0.0);  // earlier charges counted
}

}  // namespace
}  // namespace lazygraph
